(** Tests for the incremental layer: the textual method patcher
    ({!Csc_pta.Inc.apply_edits}), the update laws (edit-to-self is a no-op,
    add-then-remove restores results bit-for-bit), the fallback policy, and
    qcheck over random single edits at 1 and 4 solver domains — every
    incrementally-updated result must be bit-identical to a from-scratch
    solve ({!Csc_fuzz.Soundness.check_incremental}). *)

open Helpers
module Run = Csc_driver.Run
module Inc = Csc_pta.Inc
module Gen = Csc_workloads.Gen
module Soundness = Csc_fuzz.Soundness

let ok_edit src edits =
  match Inc.apply_edits src edits with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let err_edit src edits =
  match Inc.apply_edits src edits with
  | Ok _ -> Alcotest.fail "edit unexpectedly succeeded"
  | Error e ->
    Alcotest.(check bool) "error is descriptive" true (String.length e > 0)

(* bit-identical results (reachable set, call edges, all points-to sets) *)
let check_identical msg p a b =
  match Soundness.identical p a b with
  | None -> ()
  | Some detail -> Alcotest.failf "%s: %s" msg detail

let solve spec p =
  match (Run.run_spec spec p).Run.o_result with
  | Some r -> r
  | None -> Alcotest.fail "fresh solve produced no result"

(* ------------------------------------------------------------- patcher *)

let test_patch_replace () =
  let src =
    ok_edit Fixtures.carton
      [
        Inc.Replace_method
          {
            cls = "Carton";
            meth = "getItem";
            body = "Item r = this.item; return r;";
          };
      ]
  in
  let p = compile src in
  ignore (find_method p "Carton.getItem");
  (* the replacement body is equivalent, so precision is unchanged *)
  let spec = Run.spec Run.Imp_csc in
  let r = solve spec p in
  Alcotest.(check int) "result1 still precise" 1
    (pt_size r (var p "Main.main" "result1"))

let test_patch_errors () =
  err_edit Fixtures.carton
    [ Inc.Remove_method { cls = "Warehouse"; meth = "getItem" } ];
  err_edit Fixtures.carton
    [ Inc.Replace_method { cls = "Carton"; meth = "stealItem"; body = "" } ];
  (* [item] is a field, not a method: the patcher must not bite on it *)
  err_edit Fixtures.carton
    [ Inc.Remove_method { cls = "Carton"; meth = "item" } ]

let test_patch_add_then_remove () =
  let added =
    ok_edit Fixtures.carton
      [
        Inc.Add_method
          {
            cls = "Carton";
            meth_src = "Item peek() { Item r = this.item; return r; }";
          };
      ]
  in
  let pa = compile added in
  ignore (find_method pa "Carton.peek");
  let restored =
    ok_edit added [ Inc.Remove_method { cls = "Carton"; meth = "peek" } ]
  in
  let p0 = compile Fixtures.carton in
  let p1 = compile restored in
  Alcotest.(check int) "same method count"
    (Array.length p0.Ir.methods)
    (Array.length p1.Ir.methods);
  let spec = Run.spec Run.Imp_csc in
  check_identical "add-then-remove restores results" p0 (solve spec p0)
    (solve spec p1)

(* ------------------------------------------------------- update laws *)

let keep spec p =
  match Run.run_spec_keep spec p with
  | o, Some st -> (o, st)
  | _, None -> Alcotest.fail "no state retained"

(* replacing a method body with itself must take the incremental path,
   dirty nothing, and reproduce the baseline bit for bit *)
let test_update_noop () =
  List.iter
    (fun a ->
      let spec = Run.spec a in
      let p0 = compile Fixtures.carton in
      let o0, st = keep spec p0 in
      let src =
        ok_edit Fixtures.carton
          [
            Inc.Replace_method
              {
                cls = "Carton";
                meth = "getItem";
                body = "Item r = this.item; return r;";
              };
          ]
      in
      let p1 = compile src in
      let o1, _, info = Run.update spec ~prev:st p1 in
      Alcotest.(check bool)
        (Run.name a ^ ": incremental path")
        true
        (info.Inc.i_mode = `Incremental);
      Alcotest.(check int) (Run.name a ^ ": nothing dirty") 0
        info.Inc.i_dirty_methods;
      Alcotest.(check bool) (Run.name a ^ ": full reuse") true
        (info.Inc.i_reuse > 0.999);
      match (o0.Run.o_result, o1.Run.o_result) with
      | Some r0, Some r1 ->
        check_identical (Run.name a ^ ": no-op update") p1 r0 r1
      | _ -> Alcotest.fail "a solve produced no result")
    [ Run.Imp_ci; Run.Imp_csc ]

(* a real single-method edit: incremental result = fresh result *)
let test_update_single_edit () =
  List.iter
    (fun a ->
      let spec = Run.spec a in
      let p0 = compile Fixtures.carton in
      let _, st = keep spec p0 in
      let src =
        ok_edit Fixtures.carton
          [
            Inc.Replace_method
              {
                cls = "Carton";
                meth = "getItem";
                body = "Item r = new Item(); this.item = r; return r;";
              };
          ]
      in
      let p1 = compile src in
      let o1, _, info = Run.update spec ~prev:st p1 in
      Alcotest.(check bool)
        (Run.name a ^ ": incremental path")
        true
        (info.Inc.i_mode = `Incremental);
      Alcotest.(check bool)
        (Run.name a ^ ": one method dirty")
        true
        (info.Inc.i_dirty_methods >= 1);
      match o1.Run.o_result with
      | Some r1 ->
        check_identical (Run.name a ^ ": update = fresh") p1 (solve spec p1) r1
      | None -> Alcotest.fail "update produced no result")
    [ Run.Imp_ci; Run.Imp_csc ]

(* handing update an unrelated program (different class set) must fall back
   to a fresh solve — and still return the right answer *)
let test_update_fallback () =
  let spec = Run.spec Run.Imp_csc in
  let _, st = keep spec (compile Fixtures.carton) in
  let p1 = compile Fixtures.nested in
  let o1, _, info = Run.update spec ~prev:st p1 in
  Alcotest.(check bool) "fell back" true (info.Inc.i_mode = `Fresh);
  Alcotest.(check bool) "reason given" true (String.length info.Inc.i_reason > 0);
  match o1.Run.o_result with
  | Some r1 -> check_identical "fallback = fresh" p1 (solve spec p1) r1
  | None -> Alcotest.fail "fallback produced no result"

(* unsupported analyses must refuse to retain state at all *)
let test_update_unsupported () =
  Alcotest.(check bool) "2obj unsupported" false (Run.inc_supported Run.Imp_2obj);
  Alcotest.(check bool) "doop unsupported" false (Run.inc_supported Run.Doop_ci);
  let _, st = Run.run_spec_keep (Run.spec Run.Imp_2obj) (compile Fixtures.carton) in
  Alcotest.(check bool) "no state for 2obj" true (st = None)

(* ------------------------------------------------------ oracle chains *)

(* an edit chain through the full oracle: every step incremental-vs-fresh
   identical, ending back at the original program *)
let test_oracle_chain () =
  let e1 =
    Inc.Replace_method
      {
        cls = "Carton";
        meth = "getItem";
        body = "Item r = new Item(); this.item = r; return r;";
      }
  in
  let e2 =
    Inc.Add_method
      {
        cls = "Carton";
        meth_src = "Item peek() { Item r = this.item; return r; }";
      }
  in
  let e3 = Inc.Remove_method { cls = "Carton"; meth = "peek" } in
  let back =
    Inc.Replace_method
      {
        cls = "Carton";
        meth = "getItem";
        body = "Item r = this.item; return r;";
      }
  in
  let srcs =
    List.map
      (fun es -> ok_edit Fixtures.carton es)
      [ []; [ e1 ]; [ e1; e2 ]; [ e1; e2; e3 ]; [ e1; e2; e3; back ] ]
  in
  let revs = List.map compile srcs in
  match Soundness.check_incremental revs with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%a" Soundness.pp_violation v

(* the generator's reproducible single-method edit surface: variant-keyed
   statements appended to Driver0.op0_0 *)
let small_shape =
  Gen.
    {
      seed = 7;
      n_entity = 3;
      n_fields = 2;
      n_wrap = 2;
      n_hier = 1;
      hier_width = 2;
      n_registry = 1;
      n_util = 1;
      n_driver = 2;
      ops_per_driver = 3;
      loop_iters = 2;
      fork_sites = 2;
      mesh_classes = 4;
    }

let test_oracle_variant_edit () =
  let revs =
    List.map
      (fun v -> compile (Gen.generate ~variant:v small_shape))
      [ 0; 1; 2 ]
  in
  match Soundness.check_incremental revs with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%a" Soundness.pp_violation v

(* ------------------------------------------------------------- qcheck *)

(* random base program, random edit sequence, checked at 1 and 4 domains *)
let prop_random_edits jobs =
  QCheck2.Test.make
    ~name:(Printf.sprintf "random edit chains are exact (jobs %d)" jobs)
    ~count:6
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let base = Gen.Rand.generate ~seed ~max_size:20 in
      let plans = base :: Gen.Edit.sequence ~seed ~steps:2 base in
      let revs = List.map (fun pl -> compile (Gen.Rand.render pl)) plans in
      match Soundness.check_incremental ~jobs revs with
      | [] -> true
      | v :: _ ->
        Printf.eprintf "seed %d: %s\n%!" seed
          (Format.asprintf "%a" Soundness.pp_violation v);
        false)

let suite =
  [
    ( "inc.patcher",
      [
        Alcotest.test_case "replace method body" `Quick test_patch_replace;
        Alcotest.test_case "unknown class/method rejected" `Quick
          test_patch_errors;
        Alcotest.test_case "add then remove restores results" `Quick
          test_patch_add_then_remove;
      ] );
    ( "inc.update",
      [
        Alcotest.test_case "edit-to-self is a no-op" `Quick test_update_noop;
        Alcotest.test_case "single edit = fresh solve" `Quick
          test_update_single_edit;
        Alcotest.test_case "hierarchy change falls back" `Quick
          test_update_fallback;
        Alcotest.test_case "unsupported analyses keep no state" `Quick
          test_update_unsupported;
      ] );
    ( "inc.oracle",
      [
        Alcotest.test_case "edit chain round-trip" `Quick test_oracle_chain;
        Alcotest.test_case "variant edit surface" `Quick
          test_oracle_variant_edit;
        QCheck_alcotest.to_alcotest (prop_random_edits 1);
        QCheck_alcotest.to_alcotest (prop_random_edits 4);
      ] );
  ]

(** Taint-client tests: spec globbing and JSON parsing, static leak
    detection and sanitization, dynamic taint tags in the interpreter, the
    ground-truth corpus under [examples/leaks] (the in-tree slice of bench
    experiment E13), the dynamic-vs-static containment oracle, and the
    satellite regressions (deterministic diagnostics JSON, dataflow corner
    cases, loop-carried cast refinement). *)

module Ir = Csc_ir.Ir
module Bits = Csc_common.Bits
module Context = Csc_pta.Context
module Csc = Csc_core.Csc
module Interp = Csc_interp.Interp
module Taint = Csc_taint.Taint
module Spec = Csc_taint.Taint_spec
module Soundness = Csc_fuzz.Soundness
module Gen = Csc_workloads.Gen
module Diagnostic = Csc_checks.Diagnostic
module Cfg = Csc_checks.Cfg
module Dataflow = Csc_checks.Dataflow
module Liveness = Csc_checks.Liveness
module Reaching = Csc_checks.Reaching
module Checks = Csc_checks.Checks

(* --------------------------------------------------------------- helpers *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(** Leak diagnostics of [src] under one analysis (ci by default). *)
let leaks ?sel ?plugin_of src =
  let p, r = Helpers.analyze ?sel ?plugin_of src in
  (p, Taint.diagnostics p (Taint.analyze p r))

let n_leaks ?sel ?plugin_of src = List.length (snd (leaks ?sel ?plugin_of src))

let two_obj = Context.kobj ~k:2 ~hk:1

(* ------------------------------------------------------------------ spec *)

let test_spec_glob () =
  Alcotest.(check bool) "prefix glob" true (Spec.matches "Flow.source*" "Flow.source");
  Alcotest.(check bool) "prefix glob suffix" true
    (Spec.matches "Flow.source*" "Flow.source2");
  Alcotest.(check bool) "no match" false (Spec.matches "Flow.source*" "Flow.sink");
  Alcotest.(check bool) "class wildcard" true (Spec.matches "Source.*" "Source.user");
  Alcotest.(check bool) "inner star" true (Spec.matches "Db.*All" "Db.execAll");
  Alcotest.(check bool) "inner star miss" false (Spec.matches "Db.*All" "Db.exec");
  Alcotest.(check bool) "literal only" true (Spec.matches "A.b" "A.b");
  Alcotest.(check bool) "star is not dot-star-greedy" true
    (Spec.matches "*x*" "axb")

let test_spec_classify () =
  let p =
    Helpers.compile
      {|
class Flow {
  static Object source() { Object s = new Object(); return s; }
  static void sink(Object x) { }
  static Object scrub(Object x) { Object c = new Object(); return c; }
}
class Main { static void main() { Object o = Flow.source(); Flow.sink(o); } }
|}
  in
  let mid name = (Helpers.find_method p name).Ir.m_id in
  Alcotest.(check bool) "source role" true
    (Spec.classify Spec.builtin p (mid "Flow.source") = Some Spec.Source);
  Alcotest.(check bool) "sink role" true
    (Spec.classify Spec.builtin p (mid "Flow.sink") = Some Spec.Sink);
  Alcotest.(check bool) "sanitizer role" true
    (Spec.classify Spec.builtin p (mid "Flow.scrub") = Some Spec.Sanitizer);
  Alcotest.(check bool) "unclassified" true
    (Spec.classify Spec.builtin p (mid "Main.main") = None);
  (* sanitizer patterns bind tighter than source/sink ones *)
  let overlapping =
    { Spec.sources = [ "Flow.*" ]; sinks = [ "Flow.*" ]; sanitizers = [ "Flow.scrub*" ] }
  in
  Alcotest.(check bool) "sanitizer wins overlap" true
    (Spec.classify overlapping p (mid "Flow.scrub") = Some Spec.Sanitizer)

let test_spec_json () =
  (match
     Spec.of_string
       {|{"sources": ["A.get*"], "sinks": ["B.put*"], "sanitizers": []}|}
   with
  | Ok t ->
    Alcotest.(check (list string)) "sources" [ "A.get*" ] t.Spec.sources;
    Alcotest.(check (list string)) "sinks" [ "B.put*" ] t.Spec.sinks;
    Alcotest.(check (list string)) "sanitizers" [] t.Spec.sanitizers
  | Error e -> Alcotest.fail e);
  (match Spec.of_string {|{"sinks": ["B.put"]}|} with
  | Ok t -> Alcotest.(check (list string)) "missing keys default" [] t.Spec.sources
  | Error e -> Alcotest.fail e);
  (match Spec.of_string {|{"sources": [3]}|} with
  | Ok _ -> Alcotest.fail "non-string pattern must be rejected"
  | Error _ -> ());
  match Spec.of_string "[1,2]" with
  | Ok _ -> Alcotest.fail "non-object spec must be rejected"
  | Error _ -> ()

(* ---------------------------------------------------------------- static *)

let direct_src =
  {|
class Flow {
  static Object source() { Object s = new Object(); return s; }
  static void sink(Object x) { }
  static Object scrub(Object x) { Object c = new Object(); return c; }
}
class Main {
  static void main() {
    Object secret = Flow.source();
    Flow.sink(secret);
  }
}
|}

let test_direct_leak () =
  let p, ds = leaks direct_src in
  Alcotest.(check int) "one leak" 1 (List.length ds);
  let d = List.hd ds in
  Alcotest.(check string) "check name" "taint" d.Diagnostic.d_check;
  Alcotest.(check string) "in main" "Main.main"
    (Ir.method_name p d.Diagnostic.d_method)

let test_sanitized_clean () =
  Alcotest.(check int) "scrubbed flow is silent" 0
    (n_leaks
       {|
class Flow {
  static Object source() { Object s = new Object(); return s; }
  static void sink(Object x) { }
  static Object scrub(Object x) { Object c = new Object(); return c; }
}
class Main {
  static void main() {
    Object secret = Flow.source();
    Object clean = Flow.scrub(secret);
    Flow.sink(clean);
  }
}
|})

let test_custom_spec () =
  (* the builtin table knows nothing about Crypto/Log; a custom spec does *)
  let src =
    {|
class Crypto { static Object key() { Object k = new Object(); return k; } }
class Log { static void write(Object x) { } }
class Main {
  static void main() {
    Object k = Crypto.key();
    Log.write(k);
  }
}
|}
  in
  let p, r = Helpers.analyze src in
  Alcotest.(check int) "builtin spec sees nothing" 0
    (List.length (Taint.diagnostics p (Taint.analyze p r)));
  let spec =
    { Spec.sources = [ "Crypto.key" ]; sinks = [ "Log.write" ]; sanitizers = [] }
  in
  Alcotest.(check int) "custom spec finds the leak" 1
    (List.length (Taint.diagnostics p (Taint.analyze ~spec p r)))

(* --------------------------------------------------------------- dynamic *)

let test_dynamic_taint () =
  let p = Helpers.compile direct_src in
  let dyn = Interp.run ~taint:(Taint.hooks Spec.builtin p) p in
  Alcotest.(check int) "one dynamic sink hit" 1
    (Bits.cardinal dyn.Interp.dyn_taint_sinks);
  (* without hooks nothing is recorded *)
  let dyn0 = Interp.run p in
  Alcotest.(check int) "no hooks, no hits" 0
    (Bits.cardinal dyn0.Interp.dyn_taint_sinks)

let test_dynamic_sanitizer () =
  let p =
    Helpers.compile
      {|
class Flow {
  static Object source() { Object s = new Object(); return s; }
  static void sink(Object x) { }
  static Object scrub(Object x) { Object c = new Object(); return c; }
}
class Main {
  static void main() {
    Object secret = Flow.source();
    Object clean = Flow.scrub(secret);
    Flow.sink(clean);
  }
}
|}
  in
  let dyn = Interp.run ~taint:(Taint.hooks Spec.builtin p) p in
  Alcotest.(check int) "scrubbed value does not hit" 0
    (Bits.cardinal dyn.Interp.dyn_taint_sinks)

(* ----------------------------------------------- ground-truth corpus (E13) *)

let corpus_dir = "../examples/leaks"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mjava")
  |> List.sort String.compare

let corpus_leaks src = function
  | "ci" -> n_leaks src
  | "csc" -> n_leaks ~plugin_of:Csc.plugin src
  | "2obj" -> n_leaks ~sel:two_obj src
  | a -> Alcotest.fail ("unknown analysis " ^ a)

(* every *_leak program must be reported by every sound analysis; every
   *_ok program must be clean under the precise ones. This is the in-tree
   replay of bench experiment E13's ground truth. *)
let test_corpus_ground_truth () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus present" true (List.length files >= 6);
  List.iter
    (fun f ->
      let name = Filename.chop_suffix f ".mjava" in
      let src = read_file (Filename.concat corpus_dir f) in
      List.iter
        (fun a ->
          let n = corpus_leaks src a in
          if Filename.check_suffix name "_leak" then
            Alcotest.(check bool)
              (Printf.sprintf "%s under %s reports" name a)
              true (n >= 1)
          else if a <> "ci" then
            Alcotest.(check int)
              (Printf.sprintf "%s under %s clean" name a)
              0 n)
        [ "ci"; "csc"; "2obj" ])
    files

(* the paper's precision claim for the taint client: ci over-reports on the
   *_ok programs, csc does not *)
let test_corpus_csc_beats_ci () =
  let false_leaks a =
    List.fold_left
      (fun acc f ->
        let name = Filename.chop_suffix f ".mjava" in
        if Filename.check_suffix name "_ok" then
          acc + corpus_leaks (read_file (Filename.concat corpus_dir f)) a
        else acc)
      0 (corpus_files ())
  in
  let ci = false_leaks "ci" and csc = false_leaks "csc" in
  Alcotest.(check bool) "ci has false leaks" true (ci > 0);
  Alcotest.(check int) "csc has none" 0 csc;
  Alcotest.(check bool) "csc strictly fewer than ci" true (csc < ci)

(* dynamic ⊆ static on the corpus: every program replays through the full
   soundness oracle (which now includes the taint containment check) *)
let test_corpus_oracle () =
  List.iter
    (fun f ->
      let src = read_file (Filename.concat corpus_dir f) in
      let p = Helpers.compile src in
      match Soundness.check p with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: %a" f
          (Fmt.list ~sep:Fmt.comma Soundness.pp_violation)
          vs)
    (corpus_files ())

(* ---------------------------------------------------------- planted flows *)

let test_planted_metadata () =
  (* the generator records how many leak / sanitized chains it planted, and
     a plan that planted one must render the corresponding Flow calls *)
  let saw_leak = ref false and saw_san = ref false in
  for seed = 200 to 239 do
    let plan = Gen.Rand.generate ~seed ~max_size:25 in
    let src = Gen.Rand.render plan in
    let has needle =
      Astring.String.is_infix ~affix:needle src
    in
    if Gen.Rand.planted_leaks plan > 0 then begin
      saw_leak := true;
      Alcotest.(check bool) "planted leak renders source" true
        (has "Flow.source()");
      Alcotest.(check bool) "planted leak renders sink" true (has "Flow.sink(")
    end;
    if Gen.Rand.planted_sanitized plan > 0 then begin
      saw_san := true;
      Alcotest.(check bool) "planted sanitized renders scrub" true
        (has "Flow.scrub(")
    end
  done;
  Alcotest.(check bool) "some seed planted a leak" true !saw_leak;
  Alcotest.(check bool) "some seed planted a sanitized chain" true !saw_san

let test_generated_taint_oracle () =
  (* PR-loop slice of the nightly campaign: generated programs with planted
     flows replay through the oracle (static taint must cover dynamic) *)
  let dyn_hits = ref 0 in
  for seed = 300 to 319 do
    let plan = Gen.Rand.generate ~seed ~max_size:25 in
    let p = Helpers.compile (Gen.Rand.render plan) in
    if Taint.relevant Spec.builtin p then begin
      let dyn =
        Interp.run_trace ~max_steps:2_000_000
          ~taint:(Taint.hooks Spec.builtin p) p
      in
      dyn_hits := !dyn_hits + Bits.cardinal dyn.Interp.dyn_taint_sinks
    end;
    match Soundness.check ~max_steps:2_000_000 p with
    | [] -> ()
    | vs ->
      Alcotest.failf "seed %d: %a" seed
        (Fmt.list ~sep:Fmt.comma Soundness.pp_violation)
        vs
  done;
  (* the containment check must not be vacuous: some planted chain really
     reaches its sink at runtime across these seeds *)
  Alcotest.(check bool) "dynamic sink hits occur" true (!dyn_hits > 0)

(* --------------------------------------------- deterministic diagnostics *)

let test_render_json_deterministic () =
  let p, ds = leaks direct_src in
  let d = List.hd ds in
  let d2 = { d with Diagnostic.d_message = "zz " ^ d.Diagnostic.d_message } in
  (* same multiset in two different orders, with a duplicate injected *)
  let a = Diagnostic.render_json p [ d2; d; d ] in
  let b = Diagnostic.render_json p [ d; d; d2 ] in
  Alcotest.(check string) "order-insensitive render" a b;
  let count_objs s =
    (* one object per finding; witnesses may contain braces, so count the
       leading key instead *)
    let needle = {|{"check"|} in
    let rec go i n =
      match Astring.String.find_sub ~start:i ~sub:needle s with
      | Some j -> go (j + 1) (n + 1)
      | None -> n
    in
    go 0 0
  in
  Alcotest.(check int) "duplicates collapsed" 2 (count_objs a)

(* ------------------------------------------------- dataflow corner cases *)

module DefDom = struct
  type t = Bits.t

  let equal = Bits.equal

  let join a b =
    let c = Bits.copy a in
    Bits.union_quiet ~into:c b;
    c
end

module DefDF = Dataflow.Make (DefDom)

(* forward "defined variables" instance used by the corner-case tests *)
let def_spec boundary : DefDF.spec =
  {
    DefDF.dir = Dataflow.Forward;
    boundary;
    bottom = Bits.create ();
    transfer =
      (fun _path s d ->
        match Ir.def_of s with
        | None -> d
        | Some v ->
          let d' = Bits.copy d in
          ignore (Bits.add d' v);
          d');
  }

let test_empty_cfg () =
  let cfg = Cfg.build [||] in
  let boundary = Bits.create () in
  ignore (Bits.add boundary 1);
  let res = DefDF.solve (def_spec boundary) cfg in
  (* the boundary fact flows untouched through an empty graph *)
  Alcotest.(check bool) "boundary reaches exit" true
    (Bits.mem res.DefDF.input.(Cfg.exit_ cfg) 1);
  Alcotest.(check bool) "no facts invented" true
    (Bits.equal res.DefDF.input.(Cfg.exit_ cfg) boundary)

let test_unreachable_block () =
  (* the statements after the if/else (both branches return) are
     unreachable; the fixpoint must still terminate and not leak facts out
     of thin air into the reachable part *)
  let p =
    Helpers.compile
      {|
class Main {
  static int f(boolean b) {
    int x = 0;
    if (b) { return x; } else { return x; }
    x = 3;
    return x;
  }
  static void main() { System.print(Main.f(true)); }
}
|}
  in
  let cfg = Cfg.of_method p (Helpers.find_method p "Main.f").Ir.m_id in
  let live = Liveness.compute cfg in
  let x = Helpers.var p "Main.f" "x" in
  (* x is defined before every reachable use, so it is dead at entry *)
  Alcotest.(check bool) "x not live at entry" false
    (Bits.mem (Liveness.live_at_entry live cfg) x);
  (* reaching definitions also converge on the same graph *)
  ignore (Reaching.compute cfg)

let test_self_loop_back_edge () =
  let p =
    Helpers.compile
      {|
class Main {
  static void main() {
    int i = 0;
    while (i < 3) { i = i + 1; }
    System.print(i);
  }
}
|}
  in
  let cfg = Cfg.of_method p (Helpers.find_method p "Main.main").Ir.m_id in
  let reach = Reaching.compute cfg in
  let i = Helpers.var p "Main.main" "i" in
  (* at the loop test, both the init and the loop-carried increment reach:
     the back edge must push the body's def around the cycle *)
  let best = ref 0 in
  Reaching.iter reach cfg (fun _path s ~reaching ->
      match s with
      | Ir.While _ ->
        best := max !best (List.length (Reaching.defs_of_var reach reaching i))
      | _ -> ());
  Alcotest.(check int) "two defs reach the loop test" 2 !best

(* --------------------------------------------- casts under loop back-edges *)

let test_cast_loop_guarded_ok () =
  (* every def reaching the cast — including the loop-carried one — is a B,
     so the flow refinement keeps the cast silent across iterations *)
  let _, ds =
    Helpers.analyze
      {|
class A { }
class B extends A { }
class Main {
  static void main() {
    A x = new B();
    int i = 0;
    while (i < 3) {
      B b = (B) x;
      x = new B();
      i = i + 1;
    }
    System.print(i);
  }
}
|}
    |> fun (p, r) -> (p, Checks.run_all ~checks:[ "fail-cast" ] p r)
  in
  Alcotest.(check int) "loop-guarded cast is silent" 0 (List.length ds)

let test_cast_loop_tainted_def_alarms () =
  (* same shape, but a later iteration redefines x as a plain A: the
     back edge carries that def to the cast, which must now alarm *)
  let _, ds =
    Helpers.analyze
      {|
class A { }
class B extends A { }
class Main {
  static void main() {
    A x = new B();
    int i = 0;
    while (i < 3) {
      B b = (B) x;
      x = new A();
      i = i + 1;
    }
    System.print(i);
  }
}
|}
    |> fun (p, r) -> (p, Checks.run_all ~checks:[ "fail-cast" ] p r)
  in
  Alcotest.(check int) "loop-carried bad def alarms" 1 (List.length ds)

(* ----------------------------------------------------------------- suite *)

let suite =
  [
    ( "taint",
      [
        Alcotest.test_case "spec glob" `Quick test_spec_glob;
        Alcotest.test_case "spec classify" `Quick test_spec_classify;
        Alcotest.test_case "spec json" `Quick test_spec_json;
        Alcotest.test_case "direct leak" `Quick test_direct_leak;
        Alcotest.test_case "sanitized clean" `Quick test_sanitized_clean;
        Alcotest.test_case "custom spec" `Quick test_custom_spec;
        Alcotest.test_case "dynamic taint" `Quick test_dynamic_taint;
        Alcotest.test_case "dynamic sanitizer" `Quick test_dynamic_sanitizer;
        Alcotest.test_case "corpus ground truth" `Slow test_corpus_ground_truth;
        Alcotest.test_case "corpus csc beats ci" `Slow test_corpus_csc_beats_ci;
        Alcotest.test_case "corpus oracle" `Slow test_corpus_oracle;
        Alcotest.test_case "planted metadata" `Quick test_planted_metadata;
        Alcotest.test_case "generated taint oracle" `Slow
          test_generated_taint_oracle;
        Alcotest.test_case "render_json deterministic" `Quick
          test_render_json_deterministic;
        Alcotest.test_case "dataflow empty cfg" `Quick test_empty_cfg;
        Alcotest.test_case "dataflow unreachable block" `Quick
          test_unreachable_block;
        Alcotest.test_case "dataflow self-loop back edge" `Quick
          test_self_loop_back_edge;
        Alcotest.test_case "cast loop guarded ok" `Quick test_cast_loop_guarded_ok;
        Alcotest.test_case "cast loop bad def alarms" `Quick
          test_cast_loop_tainted_def_alarms;
      ] );
  ]

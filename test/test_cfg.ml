(** CFG construction tests: block shape for straight-line code, branches
    (including empty ones), loops, dead code after [Return] — plus the
    linearization invariant (the CFG's statement multiset equals
    [Ir.iter_stmts]'s and every path resolves with [Ir.stmt_at]) checked on
    compiled methods and on random generated programs. *)

module Ir = Csc_ir.Ir
module Cfg = Csc_checks.Cfg
module Gen = Csc_workloads.Gen

let ci lhs value = Ir.ConstInt { lhs; value }

(* ---------------------------------------------------------- hand-built *)

let test_straight_line () =
  let cfg = Cfg.build [| ci 0 1; ci 1 2; Ir.Return None |] in
  Alcotest.(check int) "all stmts placed" 3 (Cfg.stmt_count cfg);
  let entry = Cfg.block cfg (Cfg.entry cfg) in
  let exit_b = Cfg.block cfg (Cfg.exit_ cfg) in
  Alcotest.(check int) "entry empty" 0 (Array.length entry.Cfg.b_stmts);
  Alcotest.(check int) "exit empty" 0 (Array.length exit_b.Cfg.b_stmts);
  Alcotest.(check bool) "exit reachable" true (exit_b.Cfg.b_preds <> []);
  (* the single body block holds all three statements *)
  let body =
    Array.to_list cfg.Cfg.c_blocks
    |> List.filter (fun b -> Array.length b.Cfg.b_stmts > 0)
  in
  Alcotest.(check int) "one body block" 1 (List.length body);
  Alcotest.(check (list int))
    "return edges to exit"
    [ Cfg.exit_ cfg ]
    (List.hd body).Cfg.b_succs

let test_if_join () =
  let body =
    [|
      ci 0 1;
      Ir.If { cond = 0; cond_pre = [||]; then_ = [| ci 1 1 |]; else_ = [| ci 1 2 |] };
      Ir.Return None;
    |]
  in
  let cfg = Cfg.build body in
  Alcotest.(check int) "all stmts placed" 5 (Cfg.stmt_count cfg);
  (* find the block ending in the If: it must have two successors *)
  let if_block =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b ->
           Array.length b.Cfg.b_stmts > 0
           &&
           match snd b.Cfg.b_stmts.(Array.length b.Cfg.b_stmts - 1) with
           | Ir.If _ -> true
           | _ -> false)
  in
  Alcotest.(check int) "branch fan-out" 2 (List.length if_block.Cfg.b_succs);
  (* both branch blocks converge: some block has both of them as preds *)
  let join =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b -> List.length b.Cfg.b_preds = 2)
  in
  Alcotest.(check bool) "join exists" true (join.Cfg.b_id >= 0)

let test_if_empty_branches () =
  let body =
    [|
      ci 0 1;
      Ir.If { cond = 0; cond_pre = [||]; then_ = [||]; else_ = [||] };
      Ir.Return None;
    |]
  in
  let cfg = Cfg.build body in
  Alcotest.(check int) "all stmts placed" 3 (Cfg.stmt_count cfg);
  let if_block =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b ->
           Array.exists
             (fun (_, s) -> match s with Ir.If _ -> true | _ -> false)
             b.Cfg.b_stmts)
  in
  (* both empty branches collapse to a single deduplicated edge to the join *)
  Alcotest.(check int) "single join edge" 1 (List.length if_block.Cfg.b_succs)

let test_while_loop () =
  let body =
    [|
      ci 0 1;
      Ir.While { cond = 0; cond_pre = [| ci 0 0 |]; body = [| ci 1 7 |] };
      Ir.Return None;
    |]
  in
  let cfg = Cfg.build body in
  Alcotest.(check int) "all stmts placed" 5 (Cfg.stmt_count cfg);
  let header =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b ->
           Array.exists
             (fun (_, s) -> match s with Ir.While _ -> true | _ -> false)
             b.Cfg.b_stmts)
  in
  (* header holds cond_pre + the While test, and branches body/after *)
  Alcotest.(check int) "cond_pre in header" 2 (Array.length header.Cfg.b_stmts);
  Alcotest.(check int) "loop fan-out" 2 (List.length header.Cfg.b_succs);
  (* back edge: the body block's successor is the header *)
  let body_block =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b ->
           Array.exists
             (fun (_, s) ->
               match s with Ir.ConstInt { lhs = 1; _ } -> true | _ -> false)
             b.Cfg.b_stmts)
  in
  Alcotest.(check (list int))
    "back edge to header"
    [ header.Cfg.b_id ]
    body_block.Cfg.b_succs

let test_while_empty_body () =
  let body =
    [| Ir.While { cond = 0; cond_pre = [| ci 0 0 |]; body = [||] } |]
  in
  let cfg = Cfg.build body in
  let header =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b ->
           Array.exists
             (fun (_, s) -> match s with Ir.While _ -> true | _ -> false)
             b.Cfg.b_stmts)
  in
  Alcotest.(check bool)
    "self loop" true
    (List.mem header.Cfg.b_id header.Cfg.b_succs)

let test_dead_code_after_return () =
  let cfg = Cfg.build [| Ir.Return None; ci 0 1 |] in
  Alcotest.(check int) "dead stmt kept" 2 (Cfg.stmt_count cfg);
  let dead =
    Array.to_list cfg.Cfg.c_blocks
    |> List.find (fun b ->
           Array.exists
             (fun (_, s) -> match s with Ir.ConstInt _ -> true | _ -> false)
             b.Cfg.b_stmts)
  in
  Alcotest.(check (list int)) "dead block unreachable" [] dead.Cfg.b_preds

(* ------------------------------------------- invariants on compiled IR *)

let nested_src =
  {|
class Main {
  static void main() {
    int i = 0;
    int acc = 0;
    while (i < 10) {
      if (i < 5) { acc = acc + 1; }
      else {
        int j = 0;
        while (j < i) { j = j + 1; }
        acc = acc + j;
      }
      i = i + 1;
    }
    if (acc > 3) { System.print(acc); }
    System.print(i);
  }
}
|}

let multiset (stmts : Ir.stmt list) = List.sort compare stmts

let check_linearization (p : Ir.program) =
  Array.iter
    (fun (m : Ir.metho) ->
      let cfg = Cfg.build m.Ir.m_body in
      let from_ir = ref [] in
      Ir.iter_stmts (fun s -> from_ir := s :: !from_ir) m.Ir.m_body;
      let from_cfg = ref [] in
      Cfg.iter_stmts
        (fun path s ->
          from_cfg := s :: !from_cfg;
          (* every CFG label resolves back to the same statement *)
          match Ir.stmt_at m.Ir.m_body path with
          | Some s' when s' == s -> ()
          | _ ->
            Alcotest.failf "%s: path %s does not resolve"
              (Ir.method_name p m.Ir.m_id)
              (Ir.path_to_string path))
        cfg;
      if multiset !from_ir <> multiset !from_cfg then
        Alcotest.failf "%s: statement multiset not preserved"
          (Ir.method_name p m.Ir.m_id))
    p.Ir.methods

let test_nested_linearization () =
  check_linearization (Helpers.compile nested_src)

(* -------------------------------------------------- qcheck: random IR *)

let shape_gen : Gen.shape QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* seed = int_range 1 1_000_000 in
  let* n_entity = int_range 2 5 in
  let* n_wrap = int_range 1 3 in
  let* n_driver = int_range 1 3 in
  let* ops = int_range 2 5 in
  let* fork = int_range 0 5 in
  return
    Gen.
      {
        seed;
        n_entity;
        n_fields = 2;
        n_wrap;
        n_hier = 1;
        hier_width = 2;
        n_registry = 1;
        n_util = 1;
        n_driver;
        ops_per_driver = ops;
        loop_iters = 2;
        fork_sites = fork;
        mesh_classes = 4;
      }

let prop_multiset =
  QCheck2.Test.make ~name:"CFG linearization preserves the stmt multiset"
    ~count:15 shape_gen (fun shape ->
      let p = Helpers.compile (Gen.generate shape) in
      check_linearization p;
      true)

let suite =
  [
    ( "cfg",
      [
        Alcotest.test_case "straight line" `Quick test_straight_line;
        Alcotest.test_case "if joins" `Quick test_if_join;
        Alcotest.test_case "empty branches" `Quick test_if_empty_branches;
        Alcotest.test_case "while loop" `Quick test_while_loop;
        Alcotest.test_case "while empty body" `Quick test_while_empty_body;
        Alcotest.test_case "dead code after return" `Quick
          test_dead_code_after_return;
        Alcotest.test_case "nested linearization" `Quick
          test_nested_linearization;
        QCheck_alcotest.to_alcotest prop_multiset;
      ] );
  ]

(** Shared helpers for analysis tests. *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

(* every compiled test program goes through the IR validator, so the whole
   suite doubles as a frontend well-formedness check *)
let compile src =
  let p = Csc_lang.Frontend.compile_string src in
  Csc_ir.Validate.check_exn p;
  p

let find_method (p : Ir.program) name : Ir.metho =
  let found = ref None in
  Array.iter
    (fun (m : Ir.metho) -> if Ir.method_name p m.m_id = name then found := Some m)
    p.methods;
  match !found with
  | Some m -> m
  | None -> Alcotest.fail ("method not found: " ^ name)

(** [var p "Main.main" "x"] finds variable [x] of that method. *)
let var (p : Ir.program) mname vname : Ir.var_id =
  let m = find_method p mname in
  let found = ref None in
  Array.iter
    (fun (v : Ir.var) ->
      if v.v_method = m.m_id && v.v_name = vname then found := Some v.v_id)
    p.vars;
  match !found with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "var not found: %s in %s" vname mname)

let analyze ?sel ?plugin_of src : Ir.program * Solver.result =
  let p = compile src in
  let t = Solver.analyze ?sel ?plugin_of p in
  (p, Solver.result t)

(** Points-to set size of a variable, in allocation sites. *)
let pt_size (r : Solver.result) v = Csc_common.Bits.cardinal (r.r_pt v)

let reaches (p : Ir.program) (r : Solver.result) mname =
  Csc_common.Bits.mem r.r_reach (find_method p mname).m_id

(** Check a static result over-approximates a dynamic run (recall = 100%). *)
let check_recall (p : Ir.program) (r : Solver.result) =
  let dyn = Csc_interp.Interp.run p in
  Csc_common.Bits.iter
    (fun m ->
      if not (Csc_common.Bits.mem r.r_reach m) then
        Alcotest.fail
          (Printf.sprintf "%s: dynamic method %s not recalled" r.r_name
             (Ir.method_name p m)))
    dyn.dyn_reachable;
  List.iter
    (fun (site, callee) ->
      if not (List.mem (site, callee) r.r_edges) then
        Alcotest.fail
          (Printf.sprintf "%s: dynamic call edge cs%d -> %s not recalled"
             r.r_name site (Ir.method_name p callee)))
    dyn.dyn_edges

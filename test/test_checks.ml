(** Checker tests: true-positive / false-positive cases per checker on small
    programs, plus the sample programs under [examples/sample_programs]
    (declared as test deps) where CSC must report strictly fewer alarms than
    CI — the paper's precision claim at diagnostic granularity. *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Diagnostic = Csc_checks.Diagnostic
module Checks = Csc_checks.Checks

let diags ?plugin_of ?checks src =
  let p, r = Helpers.analyze ?plugin_of src in
  (p, Checks.run_all ?checks p r)

let count check (ds : Diagnostic.t list) =
  List.length (List.filter (fun d -> d.Diagnostic.d_check = check) ds)

let in_method p name (ds : Diagnostic.t list) =
  List.filter
    (fun d -> Ir.method_name p d.Diagnostic.d_method = name)
    ds

(* ---------------------------------------------------------- null-deref *)

let test_null_definite () =
  let p, ds =
    diags ~checks:[ "null-deref" ]
      {|
class Conn { void shutdown() { } }
class Main {
  static void main() {
    Conn c = null;
    c.shutdown();
  }
}
|}
  in
  let here = in_method p "Main.main" ds in
  Alcotest.(check int) "one alarm" 1 (List.length here);
  Alcotest.(check bool) "it is an error" true
    ((List.hd here).Diagnostic.d_severity = Diagnostic.Error)

let test_null_clean () =
  let p, ds =
    diags ~checks:[ "null-deref" ]
      {|
class Conn { void shutdown() { } }
class Main {
  static void main() {
    Conn c = new Conn();
    c.shutdown();
  }
}
|}
  in
  Alcotest.(check int) "no alarm on assigned receiver" 0
    (List.length (in_method p "Main.main" ds))

let test_null_branch_join () =
  let p, ds =
    diags ~checks:[ "null-deref" ]
      {|
class Conn { void shutdown() { } }
class Main {
  static void main() {
    boolean b = true;
    Conn c;
    if (b) { c = new Conn(); }
    else   { c = null; }
    c.shutdown();
  }
}
|}
  in
  let here = in_method p "Main.main" ds in
  Alcotest.(check int) "maybe-null alarm" 1 (List.length here);
  Alcotest.(check bool) "it is a warning" true
    ((List.hd here).Diagnostic.d_severity = Diagnostic.Warning)

let test_null_unassigned () =
  let p, ds =
    diags ~checks:[ "null-deref" ]
      {|
class Conn { void shutdown() { } }
class Main {
  static void main() {
    Conn c;
    c.shutdown();
  }
}
|}
  in
  Alcotest.(check int) "never-assigned alarm" 1
    (List.length (in_method p "Main.main" ds))

(* ----------------------------------------------------------- fail-cast *)

let test_cast_flow_refined_tp () =
  let p, ds =
    diags ~checks:[ "fail-cast" ]
      {|
class A { }
class B { }
class Main {
  static void main() {
    Object o = new A();
    B b = (B) o;
    System.print(1);
  }
}
|}
  in
  Alcotest.(check int) "incompatible cast alarms" 1
    (List.length (in_method p "Main.main" ds))

let test_cast_flow_refined_fp () =
  let p, ds =
    diags ~checks:[ "fail-cast" ]
      {|
class A { }
class Main {
  static void main() {
    Object o = new A();
    A a = (A) o;
    System.print(1);
  }
}
|}
  in
  Alcotest.(check int) "compatible cast is silent" 0
    (List.length (in_method p "Main.main" ds))

let test_cast_flow_beats_pta () =
  (* flow-sensitivity alone resolves this: at the cast, only the A def
     reaches even though the variable also held a B earlier *)
  let p, ds =
    diags ~checks:[ "fail-cast" ]
      {|
class A { }
class B { }
class Main {
  static void main() {
    Object o = new B();
    System.print(1);
    o = new A();
    A a = (A) o;
  }
}
|}
  in
  Alcotest.(check int) "killed def does not alarm" 0
    (List.length (in_method p "Main.main" ds))

(* ----------------------------------------------------------- poly-call *)

let devirt_src =
  {|
class Shape { int area() { return 0; } }
class Circle extends Shape { int area() { return 3; } }
class Square extends Shape { int area() { return 4; } }
class Main {
  static void main() {
    Shape mono = new Circle();
    System.print(mono.area());
    Shape poly;
    boolean b = true;
    if (b) { poly = new Circle(); }
    else   { poly = new Square(); }
    System.print(poly.area());
  }
}
|}

let test_devirt () =
  let p, ds = diags ~checks:[ "poly-call" ] devirt_src in
  (* only the 2-target site is reported; the monomorphic one is silent *)
  let here = in_method p "Main.main" ds in
  Alcotest.(check int) "one poly site" 1 (List.length here);
  Alcotest.(check bool) "witness lists both targets" true
    (match (List.hd here).Diagnostic.d_witness with
    | Some w ->
      Astring.String.is_infix ~affix:"Circle.area" w
      && Astring.String.is_infix ~affix:"Square.area" w
    | None -> false)

(* ---------------------------------------------------------- dead-store *)

let test_dead_store_tp () =
  let p, ds =
    diags ~checks:[ "dead-store" ]
      {|
class Main {
  static void main() {
    int x = 1;
    int wasted = x * 2;
    System.print(x);
  }
}
|}
  in
  Alcotest.(check bool) "dead store reported" true
    (List.length (in_method p "Main.main" ds) >= 1)

let test_dead_store_fp () =
  let p, ds =
    diags ~checks:[ "dead-store" ]
      {|
class Main {
  static void main() {
    int x = 1;
    int y = x * 2;
    System.print(y);
  }
}
|}
  in
  Alcotest.(check int) "read values are silent" 0
    (List.length (in_method p "Main.main" ds))

let test_dead_store_loop_fp () =
  (* loop-carried reads keep the store alive: no alarm on acc *)
  let p, ds =
    diags ~checks:[ "dead-store" ]
      {|
class Main {
  static void main() {
    int acc = 0;
    int i = 0;
    while (i < 3) {
      acc = acc + i;
      i = i + 1;
    }
    System.print(acc);
  }
}
|}
  in
  Alcotest.(check int) "loop accumulator is live" 0
    (List.length (in_method p "Main.main" ds))

(* ----------------------------------------- precision: CSC vs CI alarms *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let sample name = read_file ("../examples/sample_programs/" ^ name)

let counts_for src plugin_of =
  let p, r = Helpers.analyze ?plugin_of src in
  Checks.count_by_check (Checks.run_all p r)

let test_csc_fewer_alarms () =
  let src = sample "nullbugs.mjava" in
  let ci = counts_for src None in
  let csc = counts_for src (Some Csc_core.Csc.plugin) in
  let get check l = List.assoc check l in
  Alcotest.(check bool) "strictly fewer fail-casts under CSC" true
    (get "fail-cast" csc < get "fail-cast" ci);
  Alcotest.(check int) "CSC separates the pools completely" 0
    (get "fail-cast" csc);
  (* PTA-independent checkers agree between the analyses *)
  Alcotest.(check int) "dead-store agrees"
    (get "dead-store" ci) (get "dead-store" csc);
  Alcotest.(check int) "null-deref agrees here"
    (get "null-deref" ci) (get "null-deref" csc)

let test_plugins_sample () =
  let src = sample "plugins.mjava" in
  let total l = List.fold_left (fun a (_, n) -> a + n) 0 l in
  let ci = counts_for src None in
  let csc = counts_for src (Some Csc_core.Csc.plugin) in
  Alcotest.(check bool) "fewer total alarms under CSC" true
    (total csc < total ci)

let suite =
  [
    ( "checks",
      [
        Alcotest.test_case "null: definite" `Quick test_null_definite;
        Alcotest.test_case "null: clean" `Quick test_null_clean;
        Alcotest.test_case "null: branch join" `Quick test_null_branch_join;
        Alcotest.test_case "null: unassigned" `Quick test_null_unassigned;
        Alcotest.test_case "cast: incompatible" `Quick
          test_cast_flow_refined_tp;
        Alcotest.test_case "cast: compatible" `Quick test_cast_flow_refined_fp;
        Alcotest.test_case "cast: flow beats PTA" `Quick
          test_cast_flow_beats_pta;
        Alcotest.test_case "devirt: poly site only" `Quick test_devirt;
        Alcotest.test_case "dead store: reported" `Quick test_dead_store_tp;
        Alcotest.test_case "dead store: silent when read" `Quick
          test_dead_store_fp;
        Alcotest.test_case "dead store: loop accumulator" `Quick
          test_dead_store_loop_fp;
        Alcotest.test_case "samples: CSC fewer than CI" `Quick
          test_csc_fewer_alarms;
        Alcotest.test_case "samples: plugins totals" `Quick
          test_plugins_sample;
      ] );
  ]

(** Tests for the analysis-server stack: the analysis-name grammar, the
    session cache (hits, misses, digest keying, LRU eviction), the NDJSON
    request router, and one fork-based round-trip over a real unix socket. *)

open Helpers
module Run = Csc_driver.Run
module Session = Csc_driver.Session
module Export = Csc_driver.Export
module Server = Csc_server.Server
module Client = Csc_server.Client
module Json = Csc_obs.Json

(* ------------------------------------------------------------ JSON probes *)

let parse s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "reply is not JSON (%s): %s" e s

let member k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "reply has no %S member: %s" k (Json.to_string j)

let get_bool j = Option.get (Json.get_bool j)
let get_int j = Option.get (Json.get_int j)
let get_str j = Option.get (Json.get_string j)

(* Every reply must carry the versioned envelope. *)
let check_envelope j =
  Alcotest.(check int) "schema" Json.schema_version (get_int (member "schema" j))

let ok_reply s =
  let j = parse s in
  check_envelope j;
  Alcotest.(check bool) ("ok: " ^ s) true (get_bool (member "ok" j));
  j

let error_reply ~code s =
  let j = parse s in
  check_envelope j;
  Alcotest.(check bool) "not ok" false (get_bool (member "ok" j));
  Alcotest.(check string) "error code" code
    (get_str (member "code" (member "error" j)));
  j

(* a request with the carton fixture inlined, so tests never depend on the
   workload suite's compile time *)
let req ?(source = Fixtures.carton) cmd extra =
  Printf.sprintf "{\"cmd\": %S, \"source\": %S, \"analysis\": \"csc\"%s}" cmd
    source
    (if extra = "" then "" else ", " ^ extra)

(* ---------------------------------------------------------------- grammar *)

let test_grammar_roundtrip () =
  List.iter
    (fun n ->
      match Run.analysis_of_string n with
      | Error e -> Alcotest.failf "canonical name %s rejected: %s" n e
      | Ok a -> Alcotest.(check string) ("roundtrip " ^ n) n (Run.name a))
    Run.analysis_names

let test_grammar_forms () =
  let ok s a =
    Alcotest.(check bool) ("parse " ^ s) true (Run.analysis_of_string s = Ok a)
  in
  ok "kobj:3" (Run.Imp_kobj 3);
  ok "3obj" (Run.Imp_kobj 3);
  ok "kobj:2" Run.Imp_2obj;
  ok "ktype:2" Run.Imp_2type;
  ok "kcall:1" (Run.Imp_kcall 1);
  ok "doop:csc" Run.Doop_csc;
  ok "doop-csc" Run.Doop_csc;
  ok "no-collapse:csc" (Run.Imp_no_collapse Run.Imp_csc)

let test_grammar_errors () =
  let bad s =
    match Run.analysis_of_string s with
    | Ok _ -> Alcotest.failf "%s should not parse" s
    | Error e ->
      Alcotest.(check bool) ("error mentions input: " ^ s) true
        (String.length e > 0)
  in
  bad "bogus";
  bad "kobj:0";
  bad "kobj:x";
  bad "0obj";
  bad "doop:bogus";
  bad "no-collapse:doop:csc"

(* ---------------------------------------------------------------- session *)

let test_run_spec_equals_run () =
  let p = compile Fixtures.carton in
  let a = Run.run p Run.Imp_csc in
  let b = Run.run_spec (Run.spec Run.Imp_csc) p in
  Alcotest.(check bool) "same metrics" true (a.Run.o_metrics = b.Run.o_metrics);
  Alcotest.(check string) "same name" a.Run.o_analysis b.Run.o_analysis

let test_session_hit_miss () =
  let s = Session.create () in
  let p, digest =
    match Session.load_source s ~name:"carton" Fixtures.carton with
    | Ok pd -> pd
    | Error e -> Alcotest.fail e
  in
  let spec = Run.spec Run.Imp_csc in
  let _, c1 = Session.outcome s ~digest spec p in
  let _, c2 = Session.outcome s ~digest spec p in
  Alcotest.(check bool) "first is a miss" false c1;
  Alcotest.(check bool) "second is a hit" true c2;
  Alcotest.(check int) "hits" 1 (Session.hits s);
  Alcotest.(check int) "misses" 1 (Session.misses s);
  (* a progress cadence cannot change the outcome, so it must not miss *)
  let _, c3 =
    Session.outcome s ~digest { spec with Run.sp_progress_s = Some 5. } p
  in
  Alcotest.(check bool) "progress_s not in the key" true c3;
  (* a different analysis is a different key *)
  let _, c4 = Session.outcome s ~digest (Run.spec Run.Imp_ci) p in
  Alcotest.(check bool) "other analysis misses" false c4

let test_session_digest_change () =
  let s = Session.create () in
  let load src =
    match Session.load_source s ~name:"t" src with
    | Ok pd -> pd
    | Error e -> Alcotest.fail e
  in
  let p1, d1 = load Fixtures.carton in
  let p2, d2 = load Fixtures.nested in
  Alcotest.(check bool) "digests differ" true (d1 <> d2);
  let spec = Run.spec Run.Imp_csc in
  let _, _ = Session.outcome s ~digest:d1 spec p1 in
  let _, c = Session.outcome s ~digest:d2 spec p2 in
  Alcotest.(check bool) "edited source misses" false c;
  (* same source text again: digest and program cache both hit *)
  let p1', d1' = load Fixtures.carton in
  Alcotest.(check string) "digest stable" d1 d1';
  Alcotest.(check bool) "compiled program reused" true (p1 == p1')

let test_session_eviction () =
  (* a 1-byte bound can hold nothing, but the cache must still serve the
     just-inserted entry and never drop below one resident result *)
  let s = Session.create ~max_mem_bytes:1 () in
  let p, digest =
    match Session.load_source s ~name:"carton" Fixtures.carton with
    | Ok pd -> pd
    | Error e -> Alcotest.fail e
  in
  let _ = Session.outcome s ~digest (Run.spec Run.Imp_csc) p in
  let _ = Session.outcome s ~digest (Run.spec Run.Imp_ci) p in
  let _ = Session.outcome s ~digest (Run.spec Run.Imp_2obj) p in
  Alcotest.(check bool) "evictions happened" true (Session.evictions s >= 1);
  Alcotest.(check bool) "at least one entry kept" true (Session.entries s >= 1);
  Alcotest.(check bool) "bounded" true (Session.entries s <= 2)

(* ----------------------------------------------------------------- router *)

let test_protocol_all_commands () =
  let t = Server.create () in
  let h line = Server.handle_line t line in
  (* analyze: cold then warm *)
  let j = ok_reply (h (req "analyze" "")) in
  Alcotest.(check bool) "cold" false (get_bool (member "cached" j));
  Alcotest.(check string) "analysis" "csc"
    (get_str (member "analysis" (member "result" j)));
  let j = ok_reply (h (req "analyze" "")) in
  Alcotest.(check bool) "warm" true (get_bool (member "cached" j));
  Alcotest.(check bool) "session counted the hit" true
    (Session.hits (Server.session t) >= 1);
  (* pt *)
  let j = ok_reply (h (req "pt" "\"var\": \"main.result1\"")) in
  (match Json.get_list (member "vars" (member "result" j)) with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "pt returned no vars");
  (* callgraph *)
  let j = ok_reply (h (req "callgraph" "")) in
  let dot = get_str (member "dot" (member "result" j)) in
  Alcotest.(check bool) "dot is a digraph" true
    (Astring.String.is_prefix ~affix:"digraph" dot);
  (* check / taint / explain / profile *)
  let j = ok_reply (h (req "check" "")) in
  Alcotest.(check bool) "check count >= 0" true
    (get_int (member "count" (member "result" j)) >= 0);
  let j = ok_reply (h (req "taint" "")) in
  Alcotest.(check bool) "taint count >= 0" true
    (get_int (member "count" (member "result" j)) >= 0);
  let j = ok_reply (h (req "explain" "\"var\": \"main.result1\"")) in
  (match Json.get_list (member "facts" (member "result" j)) with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "explain returned no facts");
  let j = ok_reply (h (req "profile" "")) in
  Alcotest.(check bool) "profile present" true
    (member "profile" (member "result" j) <> Json.Null);
  (* stats *)
  let j = ok_reply (h "{\"cmd\": \"stats\"}") in
  let sess = member "session" (member "result" j) in
  Alcotest.(check bool) "stats hits >= 1" true (get_int (member "hits" sess) >= 1);
  Alcotest.(check bool) "requests counted" true
    (get_int (member "requests" (member "result" j)) >= 8);
  (* shutdown *)
  Alcotest.(check bool) "running" false (Server.stopped t);
  let _ = ok_reply (h "{\"cmd\": \"shutdown\"}") in
  Alcotest.(check bool) "stopped" true (Server.stopped t)

let test_protocol_pt_matches_batch () =
  let t = Server.create () in
  let j = ok_reply (Server.handle_line t (req "pt" "\"var\": \"main.result1\"")) in
  let server_vars = Json.to_string (member "vars" (member "result" j)) in
  let p = compile Fixtures.carton in
  let o = Run.run_spec (Run.spec Run.Imp_csc) p in
  let batch_vars =
    Json.to_string
      (Export.pts_json ~var:"main.result1" ~include_jdk:false p
         (Option.get o.Run.o_result))
  in
  Alcotest.(check string) "batch and server agree" batch_vars server_vars

let test_protocol_errors () =
  let t = Server.create () in
  let h line = Server.handle_line t line in
  let _ = error_reply ~code:"parse" (h "this is not json") in
  let _ = error_reply ~code:"bad-request" (h "{\"analysis\": \"csc\"}") in
  let _ = error_reply ~code:"unknown-cmd" (h "{\"cmd\": \"frobnicate\"}") in
  let _ =
    error_reply ~code:"bad-request"
      (h "{\"cmd\": \"analyze\", \"program\": \"findbugs\", \"analysis\": \
          \"bogus\"}")
  in
  let _ =
    error_reply ~code:"not-found"
      (h "{\"cmd\": \"analyze\", \"program\": \"no-such-program\"}")
  in
  let _ =
    error_reply ~code:"compile"
      (h "{\"cmd\": \"analyze\", \"source\": \"class { woops\"}")
  in
  let j =
    error_reply ~code:"bad-request"
      (h
         (Printf.sprintf
            "{\"cmd\": \"analyze\", \"program\": \"findbugs\", \"source\": %S, \
             \"id\": 42}"
            Fixtures.carton))
  in
  (* the id must be echoed even on errors *)
  Alcotest.(check int) "id echoed" 42 (get_int (member "id" j));
  (* none of the failures may count as served work gone wrong *)
  Alcotest.(check bool) "server still up" false (Server.stopped t)

(* the update command: edits applied server-side, incremental path taken,
   result digest-cached under the new revision *)
let test_protocol_update () =
  let t = Server.create () in
  let h line = Server.handle_line t line in
  (* load the base program and learn its digest from the analyze reply *)
  let j = ok_reply (h (req "analyze" "")) in
  let digest = get_str (member "digest" j) in
  let body = "Item r = new Item(); this.item = r; return r;" in
  let upd d b =
    Printf.sprintf
      "{\"cmd\": \"update\", \"analysis\": \"csc\", \"digest\": %S, \"edits\": \
       [{\"op\": \"replace\", \"class\": \"Carton\", \"method\": \"getItem\", \
       \"body\": %S}]}"
      d b
  in
  let j = ok_reply (h (upd digest body)) in
  let res = member "result" j in
  Alcotest.(check string) "incremental path" "incremental"
    (get_str (member "mode" (member "inc" res)));
  let d2 = get_str (member "digest" res) in
  Alcotest.(check bool) "digest moved" true (d2 <> digest);
  (* a fresh analyze of the edited source must land on the same digest and
     be served from the result cache with the very same outcome *)
  let edited =
    match
      Csc_pta.Inc.apply_edits Fixtures.carton
        [ Csc_pta.Inc.Replace_method { cls = "Carton"; meth = "getItem"; body } ]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let j' = ok_reply (h (req ~source:edited "analyze" "")) in
  Alcotest.(check string) "same revision" d2 (get_str (member "digest" j'));
  Alcotest.(check bool) "served from cache" true (get_bool (member "cached" j'));
  Alcotest.(check string) "same outcome"
    (Json.to_string (member "result" j'))
    (Json.to_string (member "outcome" res));
  (* the anchor follows the chain: a second (different) edit is
     incremental again *)
  let j = ok_reply (h (upd d2 "Item r = this.item; return r;")) in
  Alcotest.(check string) "chained update incremental" "incremental"
    (get_str (member "mode" (member "inc" (member "result" j))));
  (* malformed updates *)
  let _ = error_reply ~code:"bad-request" (h "{\"cmd\": \"update\"}") in
  let _ =
    error_reply ~code:"bad-request"
      (h "{\"cmd\": \"update\", \"digest\": \"no-such-digest\", \"source\": \
          \"class A { }\"}")
  in
  let _ =
    error_reply ~code:"bad-request"
      (h
         (Printf.sprintf
            "{\"cmd\": \"update\", \"digest\": %S, \"edits\": [{\"op\": \
             \"frobnicate\"}]}"
            d2))
  in
  ()

(* ----------------------------------------------------------- unix socket *)

let test_socket_roundtrip () =
  (* the daemon runs on a thread, not a forked child: the parallel-solver
     suites have already spawned Domains by the time this test runs, and
     OCaml 5 forbids fork after that *)
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "csc-test-%d.sock" (Unix.getpid ()))
  in
  let t = Server.create () in
  let th = Thread.create (fun () -> try Server.serve t ~socket with _ -> ()) () in
  let finally () =
    (* idempotent: the happy path has already shut the server down *)
    if not (Server.stopped t) then
      ignore (Client.request ~socket "{\"cmd\": \"shutdown\"}");
    Thread.join th;
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  Alcotest.(check bool) "socket came up" true
    (Client.wait_for_socket ~timeout_s:30. socket);
  let ask line =
    match Client.request ~socket line with
    | Ok reply -> reply
    | Error e -> Alcotest.failf "request failed: %s" e
  in
  let j = ok_reply (ask (req "analyze" "\"id\": 1")) in
  Alcotest.(check bool) "cold over the wire" false
    (get_bool (member "cached" j));
  let j = ok_reply (ask (req "analyze" "\"id\": 2")) in
  Alcotest.(check bool) "warm over the wire" true
    (get_bool (member "cached" j));
  Alcotest.(check int) "id echoed" 2 (get_int (member "id" j));
  let _ = ok_reply (ask "{\"cmd\": \"shutdown\"}") in
  Thread.join th;
  Alcotest.(check bool) "server stopped cleanly" true (Server.stopped t)

let suite =
  [
    ( "server.grammar",
      [
        Alcotest.test_case "canonical names roundtrip" `Quick
          test_grammar_roundtrip;
        Alcotest.test_case "generalized forms" `Quick test_grammar_forms;
        Alcotest.test_case "rejects bad spellings" `Quick test_grammar_errors;
      ] );
    ( "server.session",
      [
        Alcotest.test_case "run_spec equals run" `Quick test_run_spec_equals_run;
        Alcotest.test_case "hit/miss accounting" `Quick test_session_hit_miss;
        Alcotest.test_case "digest keying" `Quick test_session_digest_change;
        Alcotest.test_case "LRU eviction under a tiny bound" `Quick
          test_session_eviction;
      ] );
    ( "server.protocol",
      [
        Alcotest.test_case "every command round-trips" `Quick
          test_protocol_all_commands;
        Alcotest.test_case "pt matches the batch CLI" `Quick
          test_protocol_pt_matches_batch;
        Alcotest.test_case "malformed requests" `Quick test_protocol_errors;
        Alcotest.test_case "update round-trip" `Quick test_protocol_update;
      ] );
    ( "server.socket",
      [ Alcotest.test_case "serve/client round-trip" `Quick test_socket_roundtrip ] );
  ]

(** Observability subsystem coverage: JSON round-trips, registry semantics,
    snapshot properties, Timer budgets (including the solver timeout path),
    trace-file validity and provenance chains. *)

open Helpers
module Json = Csc_obs.Json
module Snapshot = Csc_obs.Snapshot
module Registry = Csc_obs.Registry
module Trace = Csc_obs.Trace
module Prov = Csc_obs.Provenance
module Timer = Csc_common.Timer
module Solver = Csc_pta.Solver
module Run = Csc_driver.Run
module Bits = Csc_common.Bits
module Gen = Csc_workloads.Gen

(* ----------------------------------------------------------------- json *)

let test_json_parse_print () =
  let s = {|{"a": [1, 2.5, true, null, "x\nA"], "b": {"c": -3}}|} in
  match Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Json.parse (Json.to_string j) with
    | Ok j2 -> Alcotest.(check bool) "reparse equal" true (j = j2)
    | Error e -> Alcotest.fail e)

let test_json_escapes () =
  let j = Json.Str "a\"b\\c\nd\te\x01f" in
  (match Json.parse (Json.to_string j) with
  | Ok j2 -> Alcotest.(check bool) "string escapes round-trip" true (j = j2)
  | Error e -> Alcotest.fail e);
  (* pretty printing parses back to the same value *)
  let big = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Bool false ]) ] in
  match Json.parse (Json.to_string ~pretty:true big) with
  | Ok j2 -> Alcotest.(check bool) "pretty round-trip" true (big = j2)
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("parser accepted: " ^ s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

(* finite floats only: NaN/inf have no JSON representation (they render as
   null), so the round-trip law is stated over finite values *)
let finite_float_gen =
  QCheck2.Gen.map
    (fun f -> if Float.is_finite f then f else 0.5)
    QCheck2.Gen.float

let prop_json_float_roundtrip =
  QCheck2.Test.make ~name:"json float print/parse is exact" ~count:500
    finite_float_gen (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) -> Int64.bits_of_float g = Int64.bits_of_float f
      | Ok (Json.Int n) -> float_of_int n = f
      | _ -> false)

(* ------------------------------------------------------------- registry *)

let test_registry_counters () =
  let reg = Registry.create () in
  let c = Registry.counter reg "hits" in
  let c' = Registry.counter reg "hits" in
  Registry.incr c;
  Registry.incr ~by:2 c';
  (* handles are memoized per (name, labels): both point at the same cell *)
  Alcotest.(check int) "memoized handle" 3 (Registry.value c);
  let lx = Registry.counter reg ~labels:[ ("pattern", "x") ] "sc" in
  let ly = Registry.counter reg ~labels:[ ("pattern", "y") ] "sc" in
  Registry.incr lx;
  Registry.incr ~by:2 ly;
  let s = Registry.snapshot reg in
  Alcotest.(check (option int)) "labelled sum" (Some 3)
    (Snapshot.counter_value s "sc");
  Alcotest.(check (option int))
    "exact label match" (Some 1)
    (Snapshot.counter_value ~labels:[ ("pattern", "x") ] s "sc");
  Alcotest.(check (option int)) "absent counter" None
    (Snapshot.counter_value s "nope")

let test_registry_gauges_histograms () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "peak" in
  Registry.set_max g 2.0;
  Registry.set_max g 1.0;
  Alcotest.(check (float 0.)) "set_max keeps max" 2.0 (Registry.gauge_value g);
  let h = Registry.histogram reg ~buckets:[ 1.0; 10.0 ] "lat" in
  Registry.observe h 0.5;
  Registry.observe h 5.0;
  Registry.observe h 100.0;
  let s = Registry.snapshot reg in
  (match
     List.find_opt
       (fun m -> Snapshot.metric_name m = "lat")
       (Snapshot.metrics s)
   with
  | Some (Snapshot.Histogram { bounds; counts; count; sum; _ }) ->
    Alcotest.(check (list (float 0.))) "bounds" [ 1.0; 10.0 ] bounds;
    Alcotest.(check (list int)) "bucket counts" [ 1; 1; 1 ] counts;
    Alcotest.(check int) "total count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 105.5 sum
  | _ -> Alcotest.fail "histogram missing from snapshot");
  Alcotest.(check (option (float 0.))) "gauge in snapshot" (Some 2.0)
    (Snapshot.gauge_value s "peak")

(* ------------------------------------------------------------- snapshot *)

let labels_gen =
  QCheck2.Gen.oneofl
    [ []; [ ("k", "v") ]; [ ("pattern", "store") ]; [ ("a", "1"); ("b", "2") ] ]

let metric_gen =
  let open QCheck2.Gen in
  let* name = oneofl [ "ptrs"; "pfg_edges"; "time_s"; "m" ] in
  let* labels = labels_gen in
  let* kind = int_range 0 2 in
  if kind = 0 then
    let+ value = int_range 0 1_000_000 in
    Snapshot.Counter { name; labels; value }
  else if kind = 1 then
    let+ value = finite_float_gen in
    Snapshot.Gauge { name; labels; value }
  else
    let* n = int_range 0 3 in
    let* bounds = list_repeat n finite_float_gen in
    let bounds = List.sort_uniq compare bounds in
    let* counts = list_repeat (List.length bounds + 1) (int_range 0 100) in
    let* sum = finite_float_gen in
    let+ count = int_range 0 1000 in
    Snapshot.Histogram { name; labels; bounds; counts; sum; count }

let snapshot_gen =
  QCheck2.Gen.(map Snapshot.of_metrics (list_size (int_range 0 8) metric_gen))

let prop_snapshot_json_roundtrip =
  QCheck2.Test.make ~name:"snapshot of_json (to_json s) = s" ~count:200
    snapshot_gen (fun s ->
      match Snapshot.of_json (Snapshot.to_json s) with
      | Ok s2 -> Snapshot.equal s s2
      | Error _ -> false)

let test_snapshot_renderers () =
  let s =
    Snapshot.of_metrics
      [
        Snapshot.Counter { name = "ptrs"; labels = []; value = 7 };
        Snapshot.Gauge { name = "time_s"; labels = []; value = 1.5 };
      ]
  in
  let line = Snapshot.to_line s in
  Alcotest.(check bool) "to_line has counter" true
    (Astring.String.is_infix ~affix:"ptrs=7" line);
  Alcotest.(check bool) "to_text has gauge" true
    (Astring.String.is_infix ~affix:"time_s" (Snapshot.to_text s));
  let s' = Snapshot.with_counter s "prov_records" 3 in
  Alcotest.(check (option int)) "with_counter" (Some 3)
    (Snapshot.counter_value s' "prov_records")

(* ---------------------------------------------------------------- timer *)

let test_timer_no_budget () =
  (* never expires, however often it is checked *)
  for _ = 1 to 1000 do
    Timer.check Timer.no_budget
  done

let test_timer_expiry () =
  let b = Timer.budget_of_seconds 1e-9 in
  (* spin past the (essentially immediate) deadline, then the check raises *)
  let t0 = Timer.now () in
  while Timer.now () -. t0 < 0.01 do
    ignore (Sys.opaque_identity 0)
  done;
  Alcotest.check_raises "expired budget raises" Timer.Out_of_budget (fun () ->
      Timer.check b)

let test_timeout_outcome_snapshot () =
  (* the solver timeout path must flag the outcome AND still deliver a
     well-formed snapshot of the aborted state *)
  let p = compile Fixtures.carton in
  let o = Run.run ~budget_s:1e-9 p Run.Imp_ci in
  Alcotest.(check bool) "timed out" true o.Run.o_timeout;
  match o.Run.o_snapshot with
  | None -> Alcotest.fail "timed-out outcome lost its snapshot"
  | Some s -> (
    match Snapshot.of_json (Snapshot.to_json s) with
    | Ok s2 ->
      Alcotest.(check bool) "snapshot serializes" true (Snapshot.equal s s2)
    | Error e -> Alcotest.fail ("timeout snapshot not well-formed: " ^ e))

(* ---------------------------------------------------------------- trace *)

let test_trace_file_valid () =
  let file = Filename.temp_file "csc_trace" ".json" in
  Trace.start ~file;
  Alcotest.(check bool) "tracing active" true (Trace.active ());
  let v =
    Trace.with_span ~cat:"test" "outer" (fun () ->
        Trace.instant "marker";
        Trace.counter "series" [ ("v", 1.0) ];
        Trace.sample_gc ();
        Trace.with_span "inner" (fun () -> 41 + 1))
  in
  Alcotest.(check int) "with_span returns" 42 v;
  (* spans close even when the body raises *)
  (try Trace.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.finish ();
  Alcotest.(check bool) "tracing stopped" false (Trace.active ());
  let ic = open_in file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  match Json.parse s with
  | Error e -> Alcotest.fail ("trace file is not valid JSON: " ^ e)
  | Ok j -> (
    match Json.member "traceEvents" j with
    | Some (Json.List evs) ->
      Alcotest.(check bool) "several events" true (List.length evs >= 5);
      List.iter
        (fun e ->
          match (Json.member "name" e, Json.member "ph" e, Json.member "ts" e)
          with
          | Some (Json.Str _), Some (Json.Str _), Some _ -> ()
          | _ -> Alcotest.fail "malformed trace event")
        evs;
      let has name =
        List.exists
          (fun e -> Json.member "name" e = Some (Json.Str name))
          evs
      in
      Alcotest.(check bool) "outer span present" true (has "outer");
      Alcotest.(check bool) "failed span still closed" true (has "boom")
    | _ -> Alcotest.fail "trace file has no traceEvents array")

(* ----------------------------------------------------------- provenance *)

let test_provenance_chains () =
  let p = compile Fixtures.carton in
  let t = Solver.create p in
  ignore (Solver.enable_provenance t : bool);
  Solver.run t;
  let pr =
    match Solver.provenance t with
    | Some pr -> pr
    | None -> Alcotest.fail "provenance not enabled"
  in
  Alcotest.(check bool) "facts recorded" true (Prov.size pr > 0);
  (* every held points-to fact has a derivation chain ending in a seed *)
  let checked = ref 0 in
  Solver.iter_ptrs t (fun ptr desc ->
      match desc with
      | Solver.PVar _ ->
        Bits.iter
          (fun obj ->
            if !checked < 50 then begin
              incr checked;
              (match List.rev (Prov.chain pr ~ptr ~obj) with
              | (_, Prov.Seed _) :: _ -> ()
              | (_, Prov.Flow _) :: _ -> Alcotest.fail "chain does not end in a seed"
              | [] -> Alcotest.fail "held fact has no derivation");
              match Solver.explain_chain t ~ptr ~obj with
              | [] -> Alcotest.fail "explain_chain empty for held fact"
              | lines ->
                List.iter
                  (fun l ->
                    Alcotest.(check bool) "rendered step" true
                      (Astring.String.is_infix ~affix:" <- " l))
                  lines
            end)
          (Solver.pts t ptr)
      | _ -> ());
  Alcotest.(check bool) "some facts checked" true (!checked > 0)

let test_provenance_first_write_wins () =
  let pr = Prov.create () in
  Prov.record_seed pr ~ptr:1 ~obj:9 ~label:"alloc";
  Prov.record_flow pr ~ptr:1 ~obj:9 ~src:2 ~via:"flow";
  (match Prov.reason pr ~ptr:1 ~obj:9 with
  | Some (Prov.Seed { label }) -> Alcotest.(check string) "first wins" "alloc" label
  | _ -> Alcotest.fail "seed record lost");
  Prov.record_flow pr ~ptr:3 ~obj:9 ~src:1 ~via:"flow";
  match Prov.chain pr ~ptr:3 ~obj:9 with
  | [ (3, Prov.Flow { src = 1; via = "flow" }); (1, Prov.Seed _) ] -> ()
  | c -> Alcotest.fail (Printf.sprintf "unexpected chain of length %d" (List.length c))

(* ------------------------------------------------- counter monotonicity *)

(* solver counters only ever move up: observed from inside the run via a
   plugin callback, over generated workloads *)
let prop_counters_monotone =
  QCheck2.Test.make ~name:"solver counters are monotone during solving"
    ~count:5
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let src = Gen.generate { Gen.small_shape with Gen.seed } in
      let p = compile src in
      let t = Solver.create p in
      let ok = ref true in
      let last = ref (0, 0, 0, 0) in
      let probe =
        {
          Solver.no_plugin with
          Solver.pl_name = "probe";
          pl_on_new_pts =
            (fun _ _ ->
              let s = Solver.snapshot t in
              let get n =
                Option.value ~default:0 (Snapshot.counter_value s n)
              in
              let cur =
                ( get "ptrs",
                  get "pfg_edges",
                  get "propagated",
                  get "cs_call_edges" )
              in
              let a, b, c, d = !last and a', b', c', d' = cur in
              if a' < a || b' < b || c' < c || d' < d then ok := false;
              last := cur);
        }
      in
      Solver.set_plugin t probe;
      Solver.run t;
      (* final snapshot dominates everything observed mid-run *)
      let s = Solver.snapshot t in
      let get n = Option.value ~default:0 (Snapshot.counter_value s n) in
      let a, b, c, d = !last in
      !ok && get "ptrs" >= a && get "pfg_edges" >= b && get "propagated" >= c
      && get "cs_call_edges" >= d)

let suite =
  [
    ( "obs-json",
      [
        Alcotest.test_case "parse/print round-trip" `Quick test_json_parse_print;
        Alcotest.test_case "string escapes" `Quick test_json_escapes;
        Alcotest.test_case "rejects malformed input" `Quick
          test_json_rejects_garbage;
        QCheck_alcotest.to_alcotest ~long:true prop_json_float_roundtrip;
      ] );
    ( "obs-metrics",
      [
        Alcotest.test_case "registry counters" `Quick test_registry_counters;
        Alcotest.test_case "gauges and histograms" `Quick
          test_registry_gauges_histograms;
        Alcotest.test_case "snapshot renderers" `Quick test_snapshot_renderers;
        QCheck_alcotest.to_alcotest ~long:true prop_snapshot_json_roundtrip;
        QCheck_alcotest.to_alcotest ~long:true prop_counters_monotone;
      ] );
    ( "obs-timer",
      [
        Alcotest.test_case "no_budget never expires" `Quick test_timer_no_budget;
        Alcotest.test_case "budget expiry raises" `Quick test_timer_expiry;
        Alcotest.test_case "timeout outcome keeps snapshot" `Quick
          test_timeout_outcome_snapshot;
      ] );
    ( "obs-trace",
      [ Alcotest.test_case "trace file is valid" `Quick test_trace_file_valid ] );
    ( "obs-provenance",
      [
        Alcotest.test_case "chains end in seeds" `Quick test_provenance_chains;
        Alcotest.test_case "first write wins" `Quick
          test_provenance_first_write_wins;
      ] );
  ]

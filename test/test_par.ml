(** Tests for the multicore parallel solver (DESIGN.md S18).

    The headline property is scheduling-independence: for every analysis and
    every [--jobs N], the parallel bulk-synchronous solver must produce the
    same reachable methods, call graph, per-variable points-to sets and
    client metrics as the sequential solver — on the fixtures, on generated
    workloads, and through the fuzz oracle's containment matrix. Engine
    counters ([propagated], [wl_pushes], [cycles_collapsed]) are explicitly
    {e not} compared: the schedule legitimately changes them.

    On a 4.14 build the [Domains_compat] serial twin runs every slice in the
    caller, so this whole suite also validates the fallback path. *)

open Helpers
module Run = Csc_driver.Run
module Solver = Csc_pta.Solver
module Par = Csc_pta.Par
module Ir = Csc_ir.Ir
module Bits = Csc_common.Bits
module Rng = Csc_common.Rng
module Domains_compat = Csc_common.Domains_compat
module Attr = Csc_obs.Attr
module Registry = Csc_obs.Registry
module Gen = Csc_workloads.Gen
module Soundness = Csc_fuzz.Soundness

let sorted_edges (r : Solver.result) = List.sort compare r.Solver.r_edges

(* Compare the full observable surface of a sequential and a parallel
   outcome (cf. Test_differential.check_identical for collapsing). *)
let check_same (p : Ir.program) tag (seq : Run.outcome) (par : Run.outcome) =
  let rs = Option.get seq.Run.o_result
  and rp = Option.get par.Run.o_result in
  Alcotest.(check bool)
    (tag ^ ": reachable methods identical")
    true
    (Bits.equal rs.Solver.r_reach rp.Solver.r_reach);
  Alcotest.(check bool)
    (tag ^ ": call edges identical")
    true
    (sorted_edges rs = sorted_edges rp);
  Array.iter
    (fun (v : Ir.var) ->
      if not (Bits.equal (rs.Solver.r_pt v.v_id) (rp.Solver.r_pt v.v_id))
      then
        Alcotest.fail
          (Printf.sprintf "%s: points-to of %s differs under --jobs" tag
             v.v_name))
    p.Ir.vars;
  Alcotest.(check bool)
    (tag ^ ": client metrics identical")
    true
    (Option.get seq.Run.o_metrics = Option.get par.Run.o_metrics)

let differential analysis src tag =
  let p = compile src in
  let seq = Run.run p analysis in
  List.iter
    (fun jobs ->
      let par = Run.run ~jobs p analysis in
      check_same p (Printf.sprintf "%s@j%d" tag jobs) seq par)
    [ 2; 4 ]

let test_fixtures_ci () =
  List.iter
    (fun (name, src) -> differential Run.Imp_ci src ("ci/" ^ name))
    Fixtures.all

let test_fixtures_csc () =
  List.iter
    (fun (name, src) -> differential Run.Imp_csc src ("csc/" ^ name))
    Fixtures.all

let test_fixtures_2obj () =
  List.iter
    (fun (name, src) -> differential Run.Imp_2obj src ("2obj/" ^ name))
    Fixtures.all

let test_generated_workload () =
  let src = Gen.generate Gen.small_shape in
  differential Run.Imp_ci src "gen/ci";
  differential Run.Imp_csc src "gen/csc"

(* The parallel path composes with collapsing off (Par defers LCD/sweeps
   entirely when the solver was created with [~collapse:false]). *)
let test_no_collapse () =
  let src = Gen.generate Gen.small_shape in
  differential (Run.Imp_no_collapse Run.Imp_csc) src "gen/csc-nocollapse"

(* Dynamic behaviour ⊆ static result for every analysis in the oracle
   matrix, with the imperative solves running on 4 domains: the soundness
   oracle doubling as a scheduling-differential test. *)
let test_fuzz_oracle_matrix () =
  List.iter
    (fun seed ->
      let plan = Gen.Rand.generate ~seed ~max_size:25 in
      let src = Gen.Rand.render plan in
      let p = compile src in
      let vs = Soundness.check ~jobs:4 p in
      List.iter
        (fun v -> Alcotest.fail (Fmt.str "%a" Soundness.pp_violation v))
        vs)
    [ 7; 99; 4242 ]

(* Provenance recording is inherently sequential: Par.run must fall back
   (not crash, not drop chains) when --explain asked for provenance. *)
let test_explain_falls_back () =
  let p = compile Fixtures.carton in
  let t = Solver.create p in
  ignore (Solver.enable_provenance t : bool);
  Par.run ~jobs:4 t;
  let n = ref 0 in
  Solver.iter_ptrs t (fun ptr desc ->
      match desc with
      | Solver.PVar (_, _) -> n := !n + Bits.cardinal (Solver.pts t ptr)
      | _ -> ());
  Alcotest.(check bool) "provenance run produced points-to facts" true (!n > 0)

(* ---- shard assignment (qcheck) ---- *)

(* Totality and canonicalization-stability of the owner function, on solved
   instances (so the union-find actually contains merges): for every live
   pointer and every jobs value, the shard is in [0, jobs) and agrees with
   the shard of the union-find representative — the invariant that makes
   owner-only writes race-free mid-round. *)
let prop_shard =
  QCheck2.Test.make ~count:15 ~name:"shard_of: total, canon-stable"
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let src = Gen.generate { Gen.small_shape with Gen.seed } in
      let p = compile src in
      let t = Solver.analyze p in
      let ok = ref true in
      Solver.iter_ptrs t (fun ptr _ ->
          List.iter
            (fun jobs ->
              let s = Solver.shard_of t ~jobs ptr in
              if s < 0 || s >= jobs then ok := false;
              if s <> Solver.shard_of t ~jobs (Solver.canon t ptr) then
                ok := false;
              if jobs = 1 && s <> 0 then ok := false)
            [ 1; 2; 3; 4; 8 ]);
      !ok)

(* ---- Domains_compat.Pool ---- *)

let test_pool_barrier () =
  Domains_compat.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "jobs" 4 (Domains_compat.Pool.jobs pool);
      let hits = Array.make 4 (-1) in
      Domains_compat.Pool.run pool (fun k -> hits.(k) <- k);
      (* everything a slice wrote is visible after the barrier *)
      Alcotest.(check (array int)) "all slices ran" [| 0; 1; 2; 3 |] hits;
      (* the pool is reusable across rounds *)
      let sum = Array.make 4 0 in
      Domains_compat.Pool.run pool (fun k -> sum.(k) <- hits.(k) * 2);
      Alcotest.(check (array int)) "second round" [| 0; 2; 4; 6 |] sum)

exception Boom

let test_pool_exception () =
  Domains_compat.Pool.with_pool ~jobs:3 (fun pool ->
      let survived = Array.make 3 false in
      (match
         Domains_compat.Pool.run pool (fun k ->
             survived.(k) <- true;
             if k = 1 then raise Boom)
       with
      | () -> Alcotest.fail "expected Boom to propagate"
      | exception Boom -> ());
      (* the raise did not kill the other slices before the barrier *)
      Alcotest.(check (array bool)) "all slices still ran" [| true; true; true |]
        survived;
      (* and the pool survives the exception *)
      Domains_compat.Pool.run pool (fun _ -> ()))

let test_recommended () =
  Alcotest.(check bool) "recommended >= 1" true (Domains_compat.recommended () >= 1);
  if not Domains_compat.available then
    Alcotest.(check int)
      "serial build recommends 1" 1
      (Domains_compat.recommended ())

(* ---- satellite units: Rng, Attr, heap gauge ---- *)

let test_rng_split () =
  let stream r = List.init 8 (fun _ -> Rng.next r) in
  let a = Rng.split (Rng.create 42) and b = Rng.split (Rng.create 42) in
  Alcotest.(check bool) "split is deterministic" true (stream a = stream b);
  let parent = Rng.create 42 in
  let child = Rng.split parent in
  Alcotest.(check bool)
    "child stream differs from parent" true
    (stream child <> stream parent)

let test_rng_copy () =
  let r = Rng.create 7 in
  ignore (Rng.next r);
  let c = Rng.copy r in
  Alcotest.(check bool)
    "copy resumes at the same state" true
    (Rng.next c = Rng.next r);
  ignore (Rng.next c);
  ignore (Rng.next c);
  (* advancing the copy must not advance the original *)
  Alcotest.(check bool) "copy is independent" true (Rng.next c <> Rng.next r)

let test_attr_merge () =
  let a = Attr.create () and b = Attr.create () in
  Attr.observe_pop a ~meth:1 ~ptr:10 ~delta:3;
  Attr.observe_pop a ~meth:2 ~ptr:11 ~delta:1;
  Attr.observe_pop b ~meth:1 ~ptr:10 ~delta:2;
  Attr.merge ~into:a b;
  Alcotest.(check int) "pops add" 3 (Attr.pops a);
  (* merging an empty table is the identity *)
  Attr.merge ~into:a (Attr.create ());
  Alcotest.(check int) "identity merge" 3 (Attr.pops a);
  (* the source table is not consumed *)
  Alcotest.(check int) "source intact" 1 (Attr.pops b)

(* The solver's heap gauge must aggregate worker-domain heaps: Gc.quick_stat
   only reports the calling domain's heap on OCaml 5, so [sample_heap] adds
   the [extra_heap_words] hook that the parallel driver installs. *)
let test_heap_gauge_hook () =
  let p = compile Fixtures.carton in
  let t = Solver.create p in
  t.Solver.extra_heap_words <- (fun () -> 123_456_789);
  Solver.sample_heap t;
  Alcotest.(check bool)
    "gauge includes extra_heap_words" true
    (Registry.gauge_value t.Solver.g_heap >= 123_456_789.)

let test_heap_gauge_parallel () =
  let p = compile Fixtures.carton in
  let t = Solver.create p in
  Par.run ~jobs:2 t;
  (* the parallel driver installed the worker-heap aggregator *)
  Alcotest.(check bool)
    "worker heaps aggregated" true
    (t.Solver.extra_heap_words () > 0)

let suite =
  [
    ( "par",
      [
        Alcotest.test_case "fixtures ci: jobs 2/4 = sequential" `Quick
          test_fixtures_ci;
        Alcotest.test_case "fixtures csc: jobs 2/4 = sequential" `Quick
          test_fixtures_csc;
        Alcotest.test_case "fixtures 2obj: jobs 2/4 = sequential" `Quick
          test_fixtures_2obj;
        Alcotest.test_case "generated workload: jobs 2/4 = sequential" `Quick
          test_generated_workload;
        Alcotest.test_case "no-collapse: jobs 2/4 = sequential" `Quick
          test_no_collapse;
        Alcotest.test_case "fuzz oracle matrix under --jobs 4" `Slow
          test_fuzz_oracle_matrix;
        Alcotest.test_case "provenance forces sequential fallback" `Quick
          test_explain_falls_back;
        QCheck_alcotest.to_alcotest prop_shard;
        Alcotest.test_case "pool: barrier + reuse" `Quick test_pool_barrier;
        Alcotest.test_case "pool: slice exception propagates" `Quick
          test_pool_exception;
        Alcotest.test_case "recommended domain count" `Quick test_recommended;
        Alcotest.test_case "rng split determinism" `Quick test_rng_split;
        Alcotest.test_case "rng copy independence" `Quick test_rng_copy;
        Alcotest.test_case "attr merge adds" `Quick test_attr_merge;
        Alcotest.test_case "heap gauge: extra_heap_words hook" `Quick
          test_heap_gauge_hook;
        Alcotest.test_case "heap gauge: parallel aggregation" `Quick
          test_heap_gauge_parallel;
      ] );
  ]

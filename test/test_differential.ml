(** Differential tests for the solver's online cycle collapsing: for every
    analysis/program pair, running with collapsing on vs off must produce
    identical points-to sets, call graphs and client metrics. Collapsing is
    a pure performance transformation — any observable difference is a bug
    (cf. DESIGN.md on which counters are *allowed* to differ). *)

open Helpers
module Run = Csc_driver.Run
module Solver = Csc_pta.Solver
module Ir = Csc_ir.Ir
module Bits = Csc_common.Bits
module Gen = Csc_workloads.Gen

let sorted_edges (r : Solver.result) = List.sort compare r.r_edges

(* Compare the full observable surface of two outcomes: reachable methods,
   call edges, per-variable points-to sets and the four client metrics. *)
let check_identical (p : Ir.program) tag (a : Run.outcome) (b : Run.outcome) =
  let ra = Option.get a.Run.o_result and rb = Option.get b.Run.o_result in
  Alcotest.(check bool)
    (tag ^ ": reachable methods identical")
    true
    (Bits.equal ra.Solver.r_reach rb.Solver.r_reach);
  Alcotest.(check bool)
    (tag ^ ": call edges identical")
    true
    (sorted_edges ra = sorted_edges rb);
  Array.iter
    (fun (v : Ir.var) ->
      if not (Bits.equal (ra.Solver.r_pt v.v_id) (rb.Solver.r_pt v.v_id)) then
        Alcotest.fail
          (Printf.sprintf "%s: points-to of %s differs with collapsing" tag
             v.v_name))
    p.Ir.vars;
  Alcotest.(check bool)
    (tag ^ ": client metrics identical")
    true
    (Option.get a.Run.o_metrics = Option.get b.Run.o_metrics)

let differential analysis src tag =
  let p = compile src in
  let on = Run.run p analysis in
  let off = Run.run p (Run.Imp_no_collapse analysis) in
  check_identical p tag on off

let test_fixtures_ci () =
  List.iter
    (fun (name, src) -> differential Run.Imp_ci src ("ci/" ^ name))
    Fixtures.all

let test_fixtures_csc () =
  List.iter
    (fun (name, src) -> differential Run.Imp_csc src ("csc/" ^ name))
    Fixtures.all

let test_fixtures_2obj () =
  List.iter
    (fun (name, src) -> differential Run.Imp_2obj src ("2obj/" ^ name))
    Fixtures.all

let test_generated_workload () =
  let src = Gen.generate Gen.small_shape in
  differential Run.Imp_ci src "gen/ci";
  differential Run.Imp_csc src "gen/csc"

(* Provenance chains are recorded in original (pre-merge) pointer names:
   enabling provenance turns collapsing off, so --explain output does not
   depend on the collapse flag at all. *)
let all_chains t =
  let acc = ref [] in
  Solver.iter_ptrs t (fun ptr desc ->
      match desc with
      | Solver.PVar (_, _) ->
        Bits.iter
          (fun obj ->
            acc := Solver.explain_chain t ~ptr ~obj :: !acc)
          (Solver.pts t ptr)
      | _ -> ());
  List.sort compare !acc

let solve_with_provenance ~collapse p =
  let t = Solver.create ~collapse p in
  ignore (Solver.enable_provenance t : bool);
  Solver.run t;
  t

let test_explain_unchanged () =
  let p = compile Fixtures.carton in
  let a = solve_with_provenance ~collapse:true p in
  let b = solve_with_provenance ~collapse:false p in
  let ca = all_chains a and cb = all_chains b in
  Alcotest.(check bool) "some chains recorded" true (ca <> []);
  Alcotest.(check bool) "explain output identical" true (ca = cb);
  List.iter
    (fun chain ->
      List.iter
        (fun line ->
          if String.length line = 0 then
            Alcotest.fail "empty provenance line")
        chain)
    ca

(* The rep -> members mapping is exposed for tooling; with collapsing off it
   must be empty, and with provenance on collapsing is forced off. *)
let test_collapse_classes_exposed () =
  let p = compile (Gen.generate Gen.small_shape) in
  let t = Solver.analyze ~collapse:false p in
  Alcotest.(check (list (pair int (list int))))
    "no classes with collapsing off" []
    (Solver.collapse_classes t);
  let t = solve_with_provenance ~collapse:true p in
  Alcotest.(check (list (pair int (list int))))
    "provenance forces collapsing off" []
    (Solver.collapse_classes t)

let suite =
  [
    ( "pta.differential",
      [
        Alcotest.test_case "fixtures: ci on = off" `Quick test_fixtures_ci;
        Alcotest.test_case "fixtures: csc on = off" `Quick test_fixtures_csc;
        Alcotest.test_case "fixtures: 2obj on = off" `Quick test_fixtures_2obj;
        Alcotest.test_case "generated workload on = off" `Quick
          test_generated_workload;
        Alcotest.test_case "explain output unchanged" `Quick
          test_explain_unchanged;
        Alcotest.test_case "collapse_classes exposure" `Quick
          test_collapse_classes_exposed;
      ] );
  ]
